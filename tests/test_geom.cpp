#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/rng.hpp"
#include "geom/grid_index.hpp"
#include "geom/vec2.hpp"

namespace manet {
namespace {

TEST(Vec2, Arithmetic) {
  const Vec2 a{1.0, 2.0}, b{3.0, 4.0};
  EXPECT_EQ((a + b), (Vec2{4.0, 6.0}));
  EXPECT_EQ((b - a), (Vec2{2.0, 2.0}));
  EXPECT_EQ((a * 2.0), (Vec2{2.0, 4.0}));
  EXPECT_EQ((2.0 * a), (Vec2{2.0, 4.0}));
}

TEST(Vec2, NormAndDistance) {
  EXPECT_DOUBLE_EQ((Vec2{3.0, 4.0}).norm(), 5.0);
  EXPECT_DOUBLE_EQ(distance({0.0, 0.0}, {3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(distance2({0.0, 0.0}, {3.0, 4.0}), 25.0);
}

TEST(Area, ContainsAndClamp) {
  const Area a{100.0, 50.0};
  EXPECT_TRUE(a.contains({0.0, 0.0}));
  EXPECT_TRUE(a.contains({100.0, 50.0}));
  EXPECT_FALSE(a.contains({100.1, 0.0}));
  EXPECT_FALSE(a.contains({0.0, -0.1}));
  EXPECT_EQ(a.clamp({150.0, -10.0}), (Vec2{100.0, 0.0}));
  EXPECT_EQ(a.clamp({50.0, 25.0}), (Vec2{50.0, 25.0}));
}

TEST(GridIndex, InsertAssignsDenseIds) {
  GridIndex g({1000.0, 1000.0}, 250.0);
  EXPECT_EQ(g.insert({10.0, 10.0}), 0u);
  EXPECT_EQ(g.insert({500.0, 500.0}), 1u);
  EXPECT_EQ(g.size(), 2u);
  EXPECT_EQ(g.position(1), (Vec2{500.0, 500.0}));
}

TEST(GridIndex, QueryFindsInRadius) {
  GridIndex g({1000.0, 1000.0}, 250.0);
  g.insert({100.0, 100.0});  // 0
  g.insert({200.0, 100.0});  // 1: 100 m from 0
  g.insert({900.0, 900.0});  // 2: far away
  std::vector<std::uint32_t> out;
  g.query({100.0, 100.0}, 150.0, 0, out);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{1}));
}

TEST(GridIndex, QueryRadiusIsInclusive) {
  GridIndex g({1000.0, 1000.0}, 250.0);
  g.insert({0.0, 0.0});
  g.insert({100.0, 0.0});
  std::vector<std::uint32_t> out;
  g.query({0.0, 0.0}, 100.0, 0, out);
  EXPECT_EQ(out.size(), 1u);
}

TEST(GridIndex, ExcludeParameter) {
  GridIndex g({1000.0, 1000.0}, 250.0);
  g.insert({100.0, 100.0});
  g.insert({110.0, 100.0});
  std::vector<std::uint32_t> out;
  g.query({100.0, 100.0}, 50.0, 1, out);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0}));
  out.clear();
  g.query({100.0, 100.0}, 50.0, 99, out);  // exclude nothing
  EXPECT_EQ(out.size(), 2u);
}

TEST(GridIndex, UpdateMovesAcrossCells) {
  GridIndex g({1000.0, 1000.0}, 100.0);
  g.insert({50.0, 50.0});
  g.insert({52.0, 50.0});
  g.update(0, {950.0, 950.0});
  std::vector<std::uint32_t> out;
  g.query({950.0, 950.0}, 10.0, 99, out);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{0}));
  out.clear();
  g.query({50.0, 50.0}, 10.0, 99, out);
  EXPECT_EQ(out, (std::vector<std::uint32_t>{1}));
}

TEST(GridIndex, PointsOutsideAreaAreClampedIntoEdgeCells) {
  GridIndex g({100.0, 100.0}, 50.0);
  g.insert({150.0, 150.0});  // clamps to the corner cell
  std::vector<std::uint32_t> out;
  g.query({150.0, 150.0}, 80.0, 99, out);
  EXPECT_EQ(out.size(), 1u);  // exact distance check uses the raw position
}

// Property: grid query == brute force, over random point sets, radii, moves.
class GridProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GridProperty, MatchesBruteForce) {
  RngStream rng(GetParam());
  const Area area{1000.0, 700.0};
  GridIndex g(area, 200.0);
  std::vector<Vec2> pts;
  for (int i = 0; i < 200; ++i) {
    const Vec2 p{rng.uniform(0.0, area.width), rng.uniform(0.0, area.height)};
    g.insert(p);
    pts.push_back(p);
  }
  for (int round = 0; round < 20; ++round) {
    // Move a few points.
    for (int m = 0; m < 10; ++m) {
      const auto id = static_cast<std::uint32_t>(rng.uniform_int(0, 199));
      const Vec2 p{rng.uniform(0.0, area.width), rng.uniform(0.0, area.height)};
      g.update(id, p);
      pts[id] = p;
    }
    const Vec2 c{rng.uniform(0.0, area.width), rng.uniform(0.0, area.height)};
    const double radius = rng.uniform(10.0, 600.0);
    const auto exclude = static_cast<std::uint32_t>(rng.uniform_int(0, 199));
    std::vector<std::uint32_t> got;
    g.query(c, radius, exclude, got);
    std::vector<std::uint32_t> want;
    for (std::uint32_t i = 0; i < pts.size(); ++i) {
      if (i != exclude && distance2(pts[i], c) <= radius * radius) want.push_back(i);
    }
    EXPECT_EQ(got, want) << "seed=" << GetParam() << " round=" << round;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridProperty, ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace manet
