#include "core/time.hpp"

#include <gtest/gtest.h>

namespace manet {
namespace {

TEST(SimTime, DefaultIsZero) {
  EXPECT_EQ(SimTime{}.ns(), 0);
  EXPECT_EQ(SimTime::zero().ns(), 0);
}

TEST(SimTime, UnitConstructors) {
  EXPECT_EQ(nanoseconds(7).ns(), 7);
  EXPECT_EQ(microseconds(3).ns(), 3'000);
  EXPECT_EQ(milliseconds(2).ns(), 2'000'000);
  EXPECT_EQ(seconds(5).ns(), 5'000'000'000);
}

TEST(SimTime, FractionalSecondsRoundsToNearest) {
  EXPECT_EQ(seconds_f(1.5).ns(), 1'500'000'000);
  EXPECT_EQ(seconds_f(0.25).ns(), 250'000'000);
  EXPECT_EQ(seconds_f(1e-9).ns(), 1);
  EXPECT_EQ(seconds_f(1.49e-9).ns(), 1);   // rounds down
  EXPECT_EQ(seconds_f(1.51e-9).ns(), 2);   // rounds up
  EXPECT_EQ(seconds_f(-1.5).ns(), -1'500'000'000);
}

TEST(SimTime, Conversions) {
  const SimTime t = milliseconds(1500);
  EXPECT_DOUBLE_EQ(t.sec(), 1.5);
  EXPECT_DOUBLE_EQ(t.ms(), 1500.0);
  EXPECT_DOUBLE_EQ(t.us(), 1'500'000.0);
}

TEST(SimTime, Arithmetic) {
  const SimTime a = seconds(2);
  const SimTime b = milliseconds(500);
  EXPECT_EQ((a + b).ns(), 2'500'000'000);
  EXPECT_EQ((a - b).ns(), 1'500'000'000);
  EXPECT_EQ((b * 4).ns(), seconds(2).ns());
  EXPECT_EQ((4 * b).ns(), seconds(2).ns());
  EXPECT_EQ(a / b, 4);
}

TEST(SimTime, CompoundAssignment) {
  SimTime t = seconds(1);
  t += milliseconds(250);
  EXPECT_EQ(t.ns(), 1'250'000'000);
  t -= milliseconds(250);
  EXPECT_EQ(t, seconds(1));
}

TEST(SimTime, Ordering) {
  EXPECT_LT(milliseconds(1), seconds(1));
  EXPECT_GT(seconds(1), microseconds(999'999));
  EXPECT_LE(seconds(1), seconds(1));
  EXPECT_EQ(seconds(1), milliseconds(1000));
  EXPECT_NE(seconds(1), milliseconds(1001));
}

TEST(SimTime, MaxIsLargerThanAnyScenario) {
  EXPECT_GT(SimTime::max(), seconds(100LL * 365 * 24 * 3600));
}

TEST(SimTime, NegativeDurationsBehave) {
  const SimTime d = milliseconds(1) - milliseconds(3);
  EXPECT_EQ(d.ns(), -2'000'000);
  EXPECT_LT(d, SimTime::zero());
}

TEST(SimTime, ToStringPicksUnit) {
  EXPECT_NE(to_string(seconds(2)).find('s'), std::string::npos);
  EXPECT_NE(to_string(milliseconds(5)).find("ms"), std::string::npos);
  EXPECT_NE(to_string(microseconds(7)).find("us"), std::string::npos);
}

}  // namespace
}  // namespace manet
