#include "routing/dsr/route_cache.hpp"

#include <gtest/gtest.h>

#include "core/rng.hpp"

namespace manet::dsr {
namespace {

const SimTime kNow = seconds(10);

TEST(DsrCache, FindOnEmpty) {
  RouteCache c(0);
  EXPECT_FALSE(c.find(5, kNow).has_value());
}

TEST(DsrCache, AddAndFind) {
  RouteCache c(0);
  c.add({0, 1, 2}, kNow);
  const auto p = c.find(2, kNow);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, (Path{0, 1, 2}));
}

TEST(DsrCache, FindsPrefixOfLongerPath) {
  RouteCache c(0);
  c.add({0, 1, 2, 3, 4}, kNow);
  const auto p = c.find(2, kNow);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, (Path{0, 1, 2}));
}

TEST(DsrCache, PrefersShortestPath) {
  RouteCache c(0);
  c.add({0, 1, 2, 3}, kNow);
  c.add({0, 4, 3}, kNow);
  const auto p = c.find(3, kNow);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->size(), 3u);
  EXPECT_EQ(p->back(), 3u);
}

TEST(DsrCache, RejectsLoopyPaths) {
  RouteCache c(0);
  c.add({0, 1, 2, 1, 3}, kNow);
  EXPECT_FALSE(c.find(3, kNow).has_value());
}

TEST(DsrCache, RejectsTrivialPaths) {
  RouteCache c(0);
  c.add({0}, kNow);
  EXPECT_EQ(c.size(kNow), 0u);
}

TEST(DsrCache, ExpiryHidesPaths) {
  RouteCache c(0, 64, /*lifetime=*/seconds(5));
  c.add({0, 1}, kNow);
  EXPECT_TRUE(c.find(1, kNow + seconds(4)).has_value());
  EXPECT_FALSE(c.find(1, kNow + seconds(6)).has_value());
}

TEST(DsrCache, DuplicateAddRefreshesExpiry) {
  RouteCache c(0, 64, seconds(5));
  c.add({0, 1}, kNow);
  c.add({0, 1}, kNow + seconds(4));
  EXPECT_TRUE(c.find(1, kNow + seconds(8)).has_value());
  EXPECT_EQ(c.size(kNow + seconds(8)), 1u);
}

TEST(DsrCache, RemoveLinkTruncates) {
  RouteCache c(0);
  c.add({0, 1, 2, 3}, kNow);
  c.remove_link(2, 3);
  EXPECT_FALSE(c.find(3, kNow).has_value());
  EXPECT_TRUE(c.find(2, kNow).has_value());  // prefix survives
}

TEST(DsrCache, RemoveLinkIsDirected) {
  RouteCache c(0);
  c.add({0, 1, 2}, kNow);
  c.remove_link(2, 1);  // reverse direction: unaffected
  EXPECT_TRUE(c.find(2, kNow).has_value());
}

TEST(DsrCache, RemoveFirstLinkDropsPath) {
  RouteCache c(0);
  c.add({0, 1, 2}, kNow);
  c.remove_link(0, 1);
  EXPECT_FALSE(c.find(1, kNow).has_value());
  EXPECT_EQ(c.size(kNow), 0u);
}

TEST(DsrCache, CapacityEvictsNearestExpiry) {
  RouteCache c(0, /*capacity=*/2, seconds(100));
  c.add({0, 1}, kNow);
  c.add({0, 2}, kNow + seconds(1));
  c.add({0, 3}, kNow + seconds(2));  // evicts {0,1}
  EXPECT_FALSE(c.find(1, kNow + seconds(3)).has_value());
  EXPECT_TRUE(c.find(2, kNow + seconds(3)).has_value());
  EXPECT_TRUE(c.find(3, kNow + seconds(3)).has_value());
}

TEST(DsrCache, LoopFreeHelper) {
  EXPECT_TRUE(loop_free({0, 1, 2}));
  EXPECT_FALSE(loop_free({0, 1, 0}));
  EXPECT_TRUE(loop_free({}));
}

// Property: find() never returns a path that does not start at self, end at
// the target, or that contains a removed link.
class DsrCacheProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DsrCacheProperty, FindRespectsInvariants) {
  RngStream rng(GetParam());
  RouteCache c(0, 32, seconds(50));
  std::vector<std::pair<NodeId, NodeId>> removed;
  for (int step = 0; step < 300; ++step) {
    const double roll = rng.uniform();
    if (roll < 0.5) {
      Path p{0};
      const int len = static_cast<int>(rng.uniform_int(1, 5));
      for (int i = 0; i < len; ++i) p.push_back(static_cast<NodeId>(rng.uniform_int(1, 15)));
      c.add(p, kNow);
      // A re-added path may legitimately reintroduce a removed link.
      std::erase_if(removed, [&p](const std::pair<NodeId, NodeId>& link) {
        for (std::size_t i = 0; i + 1 < p.size(); ++i) {
          if (p[i] == link.first && p[i + 1] == link.second) return true;
        }
        return false;
      });
    } else if (roll < 0.7) {
      const auto a = static_cast<NodeId>(rng.uniform_int(0, 15));
      const auto b = static_cast<NodeId>(rng.uniform_int(0, 15));
      c.remove_link(a, b);
      removed.emplace_back(a, b);
    } else {
      const auto dst = static_cast<NodeId>(rng.uniform_int(1, 15));
      const auto p = c.find(dst, kNow);
      if (!p) continue;
      EXPECT_EQ(p->front(), 0u);
      EXPECT_EQ(p->back(), dst);
      EXPECT_TRUE(loop_free(*p));
      for (const auto& [a, b] : removed) {
        for (std::size_t i = 0; i + 1 < p->size(); ++i) {
          EXPECT_FALSE((*p)[i] == a && (*p)[i + 1] == b)
              << "returned path uses removed link " << a << "->" << b;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DsrCacheProperty, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace manet::dsr
