#include "routing/dsdv/dsdv.hpp"

#include <gtest/gtest.h>

#include "testutil.hpp"

namespace manet {
namespace {

using test::TestNet;
using test::grid_positions;
using test::line_positions;

TestNet::ProtocolFactory dsdv_factory(dsdv::Config cfg = {}) {
  return [cfg](Node& n, std::uint64_t seed) {
    return std::make_unique<dsdv::Dsdv>(n, cfg, RngStream(seed, "routing", n.id()));
  };
}

dsdv::Dsdv& as_dsdv(RoutingProtocol& rp) { return dynamic_cast<dsdv::Dsdv&>(rp); }

TEST(Dsdv, Name) {
  TestNet net(line_positions(2), dsdv_factory());
  EXPECT_STREQ(net.routing(0).name(), "DSDV");
}

TEST(Dsdv, ConvergesOnLine) {
  TestNet net(line_positions(4), dsdv_factory());
  net.run_for(seconds(20));  // a full-dump round plus triggered propagation
  const auto rt = as_dsdv(net.routing(0)).route_to(3);
  ASSERT_TRUE(rt.has_value());
  EXPECT_EQ(rt->next_hop, 1u);
  EXPECT_EQ(rt->hops, 3);
}

TEST(Dsdv, ConvergesOnGrid) {
  TestNet net(grid_positions(3, 3), dsdv_factory());
  net.run_for(seconds(30));
  for (NodeId dst = 1; dst < 9; ++dst) {
    EXPECT_TRUE(as_dsdv(net.routing(0)).route_to(dst).has_value()) << "dst=" << dst;
  }
  // Corner to corner on a 3x3 4-neighbour grid is 4 hops.
  const auto rt = as_dsdv(net.routing(0)).route_to(8);
  ASSERT_TRUE(rt.has_value());
  EXPECT_EQ(rt->hops, 4);
}

TEST(Dsdv, DeliversOnceConverged) {
  TestNet net(line_positions(4), dsdv_factory());
  net.run_for(seconds(20));
  net.send_data(0, 3);
  net.run_for(seconds(2));
  EXPECT_EQ(net.stats().data_delivered(), 1u);
  // No discovery latency: delay is forwarding only (well under 100 ms).
  EXPECT_LT(net.stats().avg_delay_s(), 0.1);
}

TEST(Dsdv, DropsWithoutRouteBeforeConvergence) {
  TestNet net(line_positions(4), dsdv_factory());
  net.send_data(0, 3);  // t=0: tables still empty
  net.run_for(milliseconds(100));
  EXPECT_EQ(net.stats().data_delivered(), 0u);
  EXPECT_EQ(net.stats().drops(DropReason::kNoRoute), 1u);
}

TEST(Dsdv, PeriodicOverheadFlowsWithoutTraffic) {
  TestNet net(line_positions(3), dsdv_factory());
  net.run_for(seconds(35));
  // At least two full-dump rounds from each of 3 nodes.
  EXPECT_GE(net.stats().routing_tx(), 6u);
}

TEST(Dsdv, LinkBreakPropagatesBrokenRoute) {
  TestNet net(line_positions(3), dsdv_factory());
  net.run_for(seconds(20));
  ASSERT_TRUE(as_dsdv(net.routing(0)).route_to(2).has_value());
  net.mobility(2).set_position({3000.0, 3000.0});
  net.run_for(seconds(1));
  // Force traffic so the MAC notices the dead link and DSDV advertises it.
  net.send_data(0, 2);
  net.run_for(seconds(5));
  const auto rt = as_dsdv(net.routing(0)).route_to(2);
  EXPECT_FALSE(rt.has_value());
}

TEST(Dsdv, RecoveryAfterRejoin) {
  TestNet net(line_positions(3), dsdv_factory());
  net.run_for(seconds(20));
  net.mobility(2).set_position({3000.0, 3000.0});
  net.send_data(0, 2);
  net.run_for(seconds(10));
  net.mobility(2).set_position({400.0, 50.0});  // back in place
  net.run_for(seconds(40));                     // next dump round re-advertises
  net.send_data(0, 2, 0, 1);
  net.run_for(seconds(2));
  EXPECT_EQ(net.stats().data_delivered(), 1u);
}

TEST(Dsdv, SequenceNumbersPreventStaleAdoption) {
  // After a break and rejoin, routes must settle on the fresh (even-seq)
  // advertisement rather than oscillate with the broken (odd-seq) one.
  TestNet net(line_positions(3), dsdv_factory());
  net.run_for(seconds(40));
  const auto rt = as_dsdv(net.routing(0)).route_to(2);
  ASSERT_TRUE(rt.has_value());
  EXPECT_EQ(rt->hops, 2);
}

}  // namespace
}  // namespace manet
